//! The integrated control plane: the paper's Figure 1, end to end.
//!
//! Every component of the paper's architecture runs here as a separate
//! piece connected by the real substrates, rather than as function calls
//! inside one loop:
//!
//! ```text
//!    agent thread (this thread)          cluster thread
//!   ┌───────────────────────────┐       ┌─────────────────────────────┐
//!   │ any dss-core Scheduler    │ socket│ Nimbus (dss-nimbus)         │
//!   │ + AgentClient (dss-proto) │◄─────►│ + custom scheduler endpoint │
//!   │ + TransitionDb (dss-store)│frames │ + SimEngine (dss-sim)       │
//!   └───────────────────────────┘       │ + SupervisorSet heartbeats  │
//!                                       │ + CoordService (dss-coord)  │
//!                                       └─────────────────────────────┘
//! ```
//!
//! Per decision epoch: the custom scheduler reports the state `s = (X, w)`
//! over the socket; the agent's scheduler proposes a solution; Nimbus
//! deploys it minimally (only moved executors), waits for the system to
//! re-stabilize, measures the average tuple processing time with the
//! paper's 5×10 s protocol, and reports it back; the agent converts it to
//! a reward, lets the scheduler learn, and appends the `(s, a, r, s')`
//! sample to the durable transition database.
//!
//! Optionally, a machine crash is injected at a chosen epoch: its
//! supervisor goes silent, its coordination session expires on the
//! simulated clock, and Nimbus reschedules the stranded executors before
//! serving the next epoch (paper §2.1's failure handling).

use std::path::PathBuf;

use dss_coord::{CoordConfig, CoordService};
use dss_core::{RewardScale, SchedState, Scheduler};
use dss_nimbus::{AgentClient, MeasureProtocol, Nimbus, NimbusConfig, NimbusError, SupervisorSet};
use dss_proto::{ChannelTransport, Message, TcpTransport, Transport};
use dss_sim::{Assignment, ClusterSpec, SimConfig, SimEngine, Topology, Workload};
use dss_store::{StoreError, TransitionDb, TransitionRecord};

/// Configuration of an integrated control-plane run.
#[derive(Debug, Clone)]
pub struct ControlPlaneConfig {
    /// Decision epochs to serve.
    pub epochs: usize,
    /// Post-deployment stabilization wait (simulated seconds).
    pub stabilize_s: f64,
    /// Coordination session timeout (simulated milliseconds).
    pub session_timeout_ms: u64,
    /// Use a real localhost TCP socket (as deployed in the paper) instead
    /// of an in-process channel pair.
    pub use_tcp: bool,
    /// Where the transition database lives; `None` uses a fresh temp dir.
    pub db_dir: Option<PathBuf>,
    /// Latency-to-reward conversion.
    pub reward: RewardScale,
    /// Inject a machine crash: `(epoch, machine)` — the machine's
    /// supervisor goes silent just before that epoch is served.
    pub crash_machine_at: Option<(usize, usize)>,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            epochs: 10,
            stabilize_s: 60.0,
            session_timeout_ms: 30_000,
            use_tcp: false,
            db_dir: None,
            reward: RewardScale::default(),
            crash_machine_at: None,
        }
    }
}

/// Outcome of a control-plane run.
#[derive(Debug)]
pub struct ControlPlaneReport {
    /// Measured average tuple processing time per epoch (ms).
    pub epoch_latency_ms: Vec<f64>,
    /// Transitions persisted to the database.
    pub transitions_stored: u64,
    /// Failure repairs Nimbus performed.
    pub repairs: usize,
    /// Final deployed assignment.
    pub final_assignment: Vec<usize>,
    /// Peer identification exchanged in the handshake.
    pub scheduler_ident: String,
    /// Directory holding the transition database.
    pub db_dir: PathBuf,
}

/// Control-plane error: any substrate can fail.
#[derive(Debug)]
pub enum ControlPlaneError {
    /// Master/protocol/simulator failure.
    Nimbus(NimbusError),
    /// Transition database failure.
    Store(StoreError),
    /// Simulator construction failure.
    Sim(dss_sim::SimError),
    /// The cluster thread panicked.
    ClusterThreadPanicked,
}

impl std::fmt::Display for ControlPlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlPlaneError::Nimbus(e) => write!(f, "nimbus: {e}"),
            ControlPlaneError::Store(e) => write!(f, "store: {e}"),
            ControlPlaneError::Sim(e) => write!(f, "sim: {e}"),
            ControlPlaneError::ClusterThreadPanicked => write!(f, "cluster thread panicked"),
        }
    }
}

impl std::error::Error for ControlPlaneError {}

impl From<NimbusError> for ControlPlaneError {
    fn from(e: NimbusError) -> Self {
        ControlPlaneError::Nimbus(e)
    }
}

impl From<StoreError> for ControlPlaneError {
    fn from(e: StoreError) -> Self {
        ControlPlaneError::Store(e)
    }
}

impl From<dss_sim::SimError> for ControlPlaneError {
    fn from(e: dss_sim::SimError) -> Self {
        ControlPlaneError::Sim(e)
    }
}

struct ClusterOutcome {
    repairs: usize,
    final_assignment: Vec<usize>,
}

/// Run the full Figure-1 control plane for `config.epochs` epochs with the
/// given scheduler as the DRL agent's policy.
pub fn run_control_plane(
    topology: Topology,
    cluster: ClusterSpec,
    workload: Workload,
    sim_config: SimConfig,
    scheduler: &mut dyn Scheduler,
    config: &ControlPlaneConfig,
) -> Result<ControlPlaneReport, ControlPlaneError> {
    let coord = CoordService::new(CoordConfig {
        session_timeout_ms: config.session_timeout_ms,
    });
    let initial = Assignment::round_robin(&topology, &cluster);
    let engine = SimEngine::new(
        topology.clone(),
        cluster.clone(),
        workload.clone(),
        sim_config,
    )?;
    let mut nimbus = Nimbus::launch(
        engine,
        workload.clone(),
        initial,
        &coord,
        NimbusConfig {
            measure: MeasureProtocol::paper(config.stabilize_s),
            ident: "dss-nimbus/0.1".into(),
            heartbeat_interval_s: (config.session_timeout_ms as f64 / 1000.0 / 4.0).max(1.0),
            auto_repair: false,
            retry: dss_nimbus::RetryPolicy::default(),
        },
    )?;
    let supervisors = SupervisorSet::register(&coord, cluster.n_machines())
        .map_err(|e| ControlPlaneError::Nimbus(NimbusError::Coord(e)))?;
    nimbus.attach_supervisors(supervisors);

    let db_dir = config.db_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "dss-control-plane-{}-{}",
            std::process::id(),
            topology.name()
        ))
    });
    let db = TransitionDb::open(&db_dir)?;

    if config.use_tcp {
        let (listener, addr) = TcpTransport::listen_localhost().map_err(NimbusError::Proto)?;
        let cluster_thread = spawn_cluster(nimbus, config, move || {
            TcpTransport::accept(&listener).map_err(NimbusError::Proto)
        });
        let transport = TcpTransport::connect(addr).map_err(NimbusError::Proto)?;
        drive_agent(
            transport,
            scheduler,
            &topology,
            config,
            &db,
            db_dir,
            cluster_thread,
        )
    } else {
        let (agent_side, cluster_side) = ChannelTransport::pair();
        let cluster_thread = spawn_cluster(nimbus, config, move || Ok(cluster_side));
        drive_agent(
            agent_side,
            scheduler,
            &topology,
            config,
            &db,
            db_dir,
            cluster_thread,
        )
    }
}

/// Spawn the cluster thread: handshake, then serve epochs, crashing and
/// repairing machines as configured.
fn spawn_cluster<F, T>(
    mut nimbus: Nimbus,
    config: &ControlPlaneConfig,
    make_transport: F,
) -> std::thread::JoinHandle<Result<ClusterOutcome, NimbusError>>
where
    T: Transport,
    F: FnOnce() -> Result<T, NimbusError> + Send + 'static,
{
    let epochs = config.epochs;
    let crash_at = config.crash_machine_at;
    std::thread::spawn(move || {
        let transport = make_transport()?;
        nimbus.handshake(&transport)?;
        let mut repairs = 0usize;
        for epoch in 0..epochs {
            if let Some((e, m)) = crash_at {
                if e == epoch {
                    nimbus.crash_machine(m);
                }
            }
            if nimbus.detect_and_repair()?.is_some() {
                repairs += 1;
            }
            if !nimbus.serve_epoch(&transport)? {
                break;
            }
        }
        let _ = transport.send(&Message::Bye);
        Ok(ClusterOutcome {
            repairs,
            final_assignment: nimbus.engine().assignment().as_slice().to_vec(),
        })
    })
}

/// Drive the agent side: decide, learn, persist, for every epoch.
fn drive_agent<T: Transport>(
    transport: T,
    scheduler: &mut dyn Scheduler,
    topology: &Topology,
    config: &ControlPlaneConfig,
    db: &TransitionDb,
    db_dir: PathBuf,
    cluster_thread: std::thread::JoinHandle<Result<ClusterOutcome, NimbusError>>,
) -> Result<ControlPlaneReport, ControlPlaneError> {
    let mut agent = AgentClient::new(transport, "dss-agent/0.1");
    let scheduler_ident = agent.handshake()?;
    let mut epoch_latency_ms = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        // The decision made inside the closure, extracted for `observe`.
        let mut pending: Option<(SchedState, Assignment)> = None;
        let outcome = agent.run_epoch(|view| {
            let assignment = Assignment::new(view.machine_of.clone(), view.n_machines)
                .expect("scheduler sent a valid assignment");
            let rates: Vec<(usize, f64)> = view
                .source_rates
                .iter()
                .map(|&(c, r)| (c as usize, r))
                .collect();
            let workload = Workload::new(rates, topology)
                .expect("scheduler reported rates for valid components");
            let state = SchedState::new(assignment, workload);
            let action = scheduler.schedule(&state);
            let solution = action.as_slice().to_vec();
            pending = Some((state, action));
            solution
        })?;

        let Some(reward_view) = outcome else {
            break; // scheduler side shut down early
        };
        let (state, action) = pending.expect("decision recorded before reward");
        let avg_ms = reward_view.avg_tuple_ms;
        epoch_latency_ms.push(avg_ms);

        // Learn, exactly as Algorithm 1's online loop does.
        let r = config.reward.reward(avg_ms);
        let next_state = SchedState::new(action.clone(), state.workload.clone());
        scheduler.observe(&state, &action, r, &next_state);

        // Persist the sample in the Figure-1 database.
        db.append(&TransitionRecord {
            epoch: reward_view.epoch,
            machine_of: state.assignment.as_slice().to_vec(),
            n_machines: state.assignment.n_machines(),
            source_rates: state
                .workload
                .rates()
                .iter()
                .map(|&(c, rate)| (c as u32, rate))
                .collect(),
            action_machine_of: action.as_slice().to_vec(),
            reward: r,
            next_machine_of: action.as_slice().to_vec(),
            next_source_rates: state
                .workload
                .rates()
                .iter()
                .map(|&(c, rate)| (c as u32, rate))
                .collect(),
        })?;
    }
    // The cluster side may already have said Bye and dropped its
    // transport; a missing peer during orderly shutdown is not an error.
    let _ = agent.bye();

    let cluster = cluster_thread
        .join()
        .map_err(|_| ControlPlaneError::ClusterThreadPanicked)??;
    Ok(ControlPlaneReport {
        epoch_latency_ms,
        transitions_stored: db.len(),
        repairs: cluster.repairs,
        final_assignment: cluster.final_assignment,
        scheduler_ident,
        db_dir,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_core::RoundRobinScheduler;
    use dss_sim::{Grouping, TopologyBuilder};

    fn small_setup() -> (Topology, ClusterSpec, Workload) {
        let mut b = TopologyBuilder::new("cp-test");
        let s = b.spout("s", 2, 0.05);
        let x = b.bolt("x", 4, 0.3);
        b.edge(s, x, Grouping::Shuffle, 1.0, 128);
        let topology = b.build().unwrap();
        let cluster = ClusterSpec::homogeneous(4);
        let workload = Workload::uniform(&topology, 40.0);
        (topology, cluster, workload)
    }

    fn fresh_db_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dss-cp-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn channel_control_plane_runs_epochs_and_persists() {
        let (topology, cluster, workload) = small_setup();
        let mut sched = RoundRobinScheduler::new(&topology, &cluster);
        let db_dir = fresh_db_dir("chan");
        let report = run_control_plane(
            topology,
            cluster,
            workload,
            SimConfig::default(),
            &mut sched,
            &ControlPlaneConfig {
                epochs: 3,
                stabilize_s: 5.0,
                db_dir: Some(db_dir.clone()),
                ..ControlPlaneConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.epoch_latency_ms.len(), 3);
        assert!(report.epoch_latency_ms.iter().all(|&ms| ms > 0.0));
        assert_eq!(report.transitions_stored, 3);
        assert_eq!(report.repairs, 0);
        // The database is readable after the run.
        let db = TransitionDb::open(&db_dir).unwrap();
        assert_eq!(db.scan().unwrap().len(), 3);
        std::fs::remove_dir_all(&db_dir).ok();
    }

    #[test]
    fn tcp_control_plane_matches_channel_behaviour() {
        let (topology, cluster, workload) = small_setup();
        let mut sched = RoundRobinScheduler::new(&topology, &cluster);
        let db_dir = fresh_db_dir("tcp");
        let report = run_control_plane(
            topology,
            cluster,
            workload,
            SimConfig::default(),
            &mut sched,
            &ControlPlaneConfig {
                epochs: 2,
                stabilize_s: 5.0,
                use_tcp: true,
                db_dir: Some(db_dir.clone()),
                ..ControlPlaneConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.epoch_latency_ms.len(), 2);
        assert_eq!(report.scheduler_ident, "dss-nimbus/0.1");
        std::fs::remove_dir_all(&db_dir).ok();
    }

    #[test]
    fn injected_crash_triggers_exactly_one_repair() {
        let (topology, cluster, workload) = small_setup();
        let mut sched = RoundRobinScheduler::new(&topology, &cluster);
        let db_dir = fresh_db_dir("crash");
        let report = run_control_plane(
            topology,
            cluster,
            workload,
            SimConfig::default(),
            &mut sched,
            &ControlPlaneConfig {
                epochs: 3,
                stabilize_s: 40.0, // one epoch outlasts the session timeout
                session_timeout_ms: 20_000,
                db_dir: Some(db_dir.clone()),
                crash_machine_at: Some((1, 2)),
                ..ControlPlaneConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.repairs, 1, "one crash, one repair");
        // Note: a round-robin agent will keep proposing machine 2; the
        // point here is that Nimbus detected the failure and repaired the
        // assignment when it happened.
        std::fs::remove_dir_all(&db_dir).ok();
    }
}
