//! Bridge from the durable transition database to offline training.
//!
//! The whole point of Figure 1's "Database" is that the framework
//! pre-trains its networks from historical samples (paper §3.2.1: "The
//! actor and critic networks can be pre-trained by the historical
//! transition samples"). This module reads a [`TransitionDb`] back into
//! the [`OfflineDataset`] the `dss-core` learners pretrain from, so an
//! agent restarted after a crash resumes from everything it ever measured
//! instead of starting cold.
//!
//! Records are validated against the topology and cluster the agent is
//! being trained for: a database written for a different setup is a usage
//! error surfaced as [`OfflineLoadError::ShapeMismatch`], not silently
//! mistrained on.

use dss_core::{OfflineDataset, RawSample, RewardScale};
use dss_sim::{Assignment, RuntimeStats, Topology, Workload};
use dss_store::{StoreError, TransitionDb, TransitionRecord};

/// Errors loading a transition database into an offline dataset.
#[derive(Debug)]
pub enum OfflineLoadError {
    /// The underlying store failed.
    Store(StoreError),
    /// A record does not fit the given topology/cluster shape.
    ShapeMismatch {
        /// Index of the offending record in scan order.
        index: usize,
        /// What did not line up.
        detail: String,
    },
}

impl std::fmt::Display for OfflineLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfflineLoadError::Store(e) => write!(f, "store: {e}"),
            OfflineLoadError::ShapeMismatch { index, detail } => {
                write!(f, "record {index} does not match this setup: {detail}")
            }
        }
    }
}

impl std::error::Error for OfflineLoadError {}

impl From<StoreError> for OfflineLoadError {
    fn from(e: StoreError) -> Self {
        OfflineLoadError::Store(e)
    }
}

/// Read every sample in `db` into an [`OfflineDataset`] for `topology` on
/// a cluster of `n_machines`.
///
/// The DRL learners only consume the `(s, a, r, s')` view, so the rich
/// [`RuntimeStats`] (which the model-based baseline needs and the paper's
/// database never stored) is reconstructed minimally: the measured
/// latency, with per-component fields empty.
pub fn dataset_from_db(
    db: &TransitionDb,
    topology: &Topology,
    n_machines: usize,
    reward: RewardScale,
) -> Result<OfflineDataset, OfflineLoadError> {
    let records = db.scan()?;
    let mut samples = Vec::with_capacity(records.len());
    for (index, rec) in records.into_iter().enumerate() {
        samples.push(
            sample_from_record(rec, topology, n_machines, reward)
                .map_err(|detail| OfflineLoadError::ShapeMismatch { index, detail })?,
        );
    }
    Ok(OfflineDataset { samples })
}

fn sample_from_record(
    rec: TransitionRecord,
    topology: &Topology,
    n_machines: usize,
    reward: RewardScale,
) -> Result<RawSample, String> {
    let n = topology.n_executors();
    if rec.machine_of.len() != n || rec.action_machine_of.len() != n {
        return Err(format!(
            "expected {n} executors, record has {} / {}",
            rec.machine_of.len(),
            rec.action_machine_of.len()
        ));
    }
    if rec.n_machines != n_machines {
        return Err(format!(
            "expected {n_machines} machines, record has {}",
            rec.n_machines
        ));
    }
    let prev = Assignment::new(rec.machine_of, n_machines).map_err(|e| e.to_string())?;
    let action = Assignment::new(rec.action_machine_of, n_machines).map_err(|e| e.to_string())?;
    let rates: Vec<(usize, f64)> = rec
        .source_rates
        .iter()
        .map(|&(c, r)| (c as usize, r))
        .collect();
    let workload = Workload::new(rates, topology).map_err(|e| e.to_string())?;
    let latency_ms = reward.latency_ms(rec.reward);
    if !latency_ms.is_finite() || latency_ms < 0.0 {
        return Err(format!("reward {} is not a scaled latency", rec.reward));
    }
    Ok(RawSample {
        prev,
        action,
        workload,
        latency_ms,
        stats: minimal_stats(latency_ms, topology, n_machines),
    })
}

/// The paper's database stores only `(s, a, r, s')`; reconstruct the
/// minimal stats snapshot the dataset type carries.
fn minimal_stats(avg_latency_ms: f64, topology: &Topology, n_machines: usize) -> RuntimeStats {
    RuntimeStats {
        avg_latency_ms,
        executor_rates: vec![0.0; topology.n_executors()],
        executor_sojourn_ms: vec![0.0; topology.n_executors()],
        machine_cpu_cores: vec![0.0; n_machines],
        machine_cross_kib_s: vec![0.0; n_machines],
        edge_transfer_ms: vec![0.0; topology.edges().len()],
        completed: 0,
        failed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_sim::{Grouping, TopologyBuilder};
    use std::path::PathBuf;

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new("offline-test");
        let s = b.spout("s", 2, 0.05);
        let x = b.bolt("x", 2, 0.3);
        b.edge(s, x, Grouping::Shuffle, 1.0, 64);
        b.build().unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dss-offline-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn record(reward: f64) -> TransitionRecord {
        TransitionRecord {
            epoch: 0,
            machine_of: vec![0, 1, 2, 3],
            n_machines: 4,
            source_rates: vec![(0, 100.0)],
            action_machine_of: vec![0, 0, 1, 1],
            reward,
            next_machine_of: vec![0, 0, 1, 1],
            next_source_rates: vec![(0, 100.0)],
        }
    }

    #[test]
    fn roundtrip_db_to_dataset() {
        let dir = tmpdir("rt");
        let db = TransitionDb::open(&dir).unwrap();
        let scale = RewardScale::default();
        for i in 0..5 {
            db.append(&record(scale.reward(1.0 + i as f64))).unwrap();
        }
        let topology = topo();
        let ds = dataset_from_db(&db, &topology, 4, scale).unwrap();
        assert_eq!(ds.len(), 5);
        assert!((ds.samples[2].latency_ms - 3.0).abs() < 1e-9);
        assert_eq!(ds.samples[0].action.as_slice(), &[0, 0, 1, 1]);
        // The DDPG view is directly trainable.
        let transitions = ds.ddpg_transitions(1000.0, scale);
        assert_eq!(transitions.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_shape_is_rejected_with_context() {
        let dir = tmpdir("shape");
        let db = TransitionDb::open(&dir).unwrap();
        db.append(&record(-0.1)).unwrap();
        let topology = topo();
        // Wrong machine count.
        let err = dataset_from_db(&db, &topology, 7, RewardScale::default()).unwrap_err();
        assert!(matches!(
            err,
            OfflineLoadError::ShapeMismatch { index: 0, .. }
        ));
        // Wrong executor count: a bigger topology.
        let mut b = TopologyBuilder::new("bigger");
        let s = b.spout("s", 4, 0.05);
        let x = b.bolt("x", 4, 0.3);
        b.edge(s, x, Grouping::Shuffle, 1.0, 64);
        let bigger = b.build().unwrap();
        let err = dataset_from_db(&db, &bigger, 4, RewardScale::default()).unwrap_err();
        assert!(matches!(err, OfflineLoadError::ShapeMismatch { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn positive_rewards_are_rejected() {
        // A positive reward decodes to a negative latency: corrupt usage.
        let dir = tmpdir("posr");
        let db = TransitionDb::open(&dir).unwrap();
        db.append(&record(0.5)).unwrap();
        let err = dataset_from_db(&db, &topo(), 4, RewardScale::default()).unwrap_err();
        assert!(matches!(err, OfflineLoadError::ShapeMismatch { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_db_gives_empty_dataset() {
        let dir = tmpdir("empty");
        let db = TransitionDb::open(&dir).unwrap();
        let ds = dataset_from_db(&db, &topo(), 4, RewardScale::default()).unwrap();
        assert!(ds.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
