//! The stream word-count workload: Zipf text generation, the fields-grouped
//! topology with hot-key skew, and the effect of scheduling on it.
//!
//! ```sh
//! cargo run --release --example word_count_stream
//! ```

use dsdps_drl::apps::datagen::TextGen;
use dsdps_drl::apps::word_count;
use dsdps_drl::sim::{Assignment, ClusterSpec, SimConfig, SimEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The input: Zipf-distributed synthetic text standing in for the
    // paper's "Alice's Adventures in Wonderland" stream.
    let gen = TextGen::new(3000, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    println!("sample input lines:");
    for _ in 0..3 {
        println!("  {}", gen.next_line(&mut rng));
    }

    // Run the topology under the default scheduler on the tuple-level
    // engine and inspect the skew the fields grouping creates.
    let app = word_count();
    let cluster = ClusterSpec::homogeneous(10);
    let mut engine = SimEngine::new(
        app.topology.clone(),
        cluster.clone(),
        app.workload.clone(),
        SimConfig::steady_state(5),
    )
    .expect("valid app");
    let rr = Assignment::round_robin(&app.topology, &cluster);
    engine.deploy(rr).expect("deploys");
    engine.run_until(120.0);

    let stats = engine.stats();
    let count_execs = app.topology.executors_of(2);
    let rates: Vec<f64> = count_execs.map(|e| stats.executor_rates[e]).collect();
    let max = rates.iter().cloned().fold(0.0, f64::max);
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\ncount-bolt executor input rates after 2 simulated minutes:");
    println!(
        "  hottest {max:.1} tuples/s, coldest {min:.1} tuples/s (skew x{:.1})",
        max / min.max(1e-9)
    );
    let (emitted, completed, failed, in_flight) = engine.tuple_counts();
    println!(
        "tuples: emitted {emitted}, completed {completed}, failed {failed}, in flight {in_flight}"
    );
    println!(
        "avg end-to-end tuple processing time: {:.3} ms",
        engine.window_avg_latency_ms().unwrap_or(f64::NAN)
    );
}
