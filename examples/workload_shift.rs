//! Figure 12 in miniature: deploy a trained actor-critic scheduler, step
//! the workload +50% mid-run, and watch it re-schedule and restabilize.
//!
//! ```sh
//! cargo run --release --example workload_shift
//! ```

use dsdps_drl::apps::{continuous_queries, CqScale};
use dsdps_drl::control::experiment::{train_method, workload_shift_curve, Method};
use dsdps_drl::control::ControlConfig;
use dsdps_drl::sim::ClusterSpec;

fn main() {
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = ControlConfig::test();

    println!("training actor-critic scheduler on {} ...", app.name);
    let mut outcome = train_method(Method::ActorCritic, &app, &cluster, &cfg);

    // 25 simulated minutes; +50% workload at minute 10.
    let curve = workload_shift_curve(&app, &cluster, &cfg, &mut outcome, 10.0, 25.0, 30.0);
    println!("t_min,avg_tuple_ms");
    for (t, v) in curve.iter() {
        println!("{:.1},{v:.3}", t / 60.0);
    }
    let before = curve
        .window_mean(6.0 * 60.0, 10.0 * 60.0)
        .unwrap_or(f64::NAN);
    let after = curve
        .window_mean(21.0 * 60.0, 25.0 * 60.0 + 1.0)
        .unwrap_or(f64::NAN);
    println!("\nstable before shift: {before:.3} ms");
    println!("restabilized after +50% workload and re-scheduling: {after:.3} ms");
}
