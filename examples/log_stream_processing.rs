//! The log stream processing workload (paper Figure 4): IIS-style log
//! lines flow through LogRules into parallel Indexer and Counter branches,
//! each ending in a database writer. Shows the two-branch tuple trees and
//! the acker semantics: a tuple is complete only when *both* branches
//! finish.
//!
//! ```sh
//! cargo run --release --example log_stream_processing
//! ```

use dsdps_drl::apps::datagen::LogLineGen;
use dsdps_drl::apps::log_stream;
use dsdps_drl::sim::{Assignment, ClusterSpec, SimConfig, SimEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Sample the synthetic IIS log stream.
    let gen = LogLineGen::new(50, 1.0);
    let mut rng = StdRng::seed_from_u64(9);
    println!("sample log lines:");
    for t in 0..3 {
        println!("  {}", gen.next_line(3600 + t * 17, &mut rng));
    }

    // Run the 100-executor topology for five simulated minutes.
    let app = log_stream();
    let cluster = ClusterSpec::homogeneous(10);
    let mut engine = SimEngine::new(
        app.topology.clone(),
        cluster.clone(),
        app.workload.clone(),
        SimConfig::steady_state(13),
    )
    .expect("valid app");
    engine
        .deploy(Assignment::round_robin(&app.topology, &cluster))
        .expect("deploys");
    engine.run_until(300.0);

    let (emitted, completed, failed, in_flight) = engine.tuple_counts();
    println!(
        "\nafter 5 simulated minutes at {} lines/s:",
        app.workload.total_rate()
    );
    println!(
        "  trees emitted {emitted}, completed {completed}, failed {failed}, in flight {in_flight}"
    );
    println!(
        "  avg end-to-end tuple processing time: {:.2} ms",
        engine.window_avg_latency_ms().unwrap_or(f64::NAN)
    );
    let stats = engine.stats();
    println!(
        "  busiest machine demand: {:.2} cores; cross-machine traffic {:.0} KiB/s total",
        stats.machine_cpu_cores.iter().cloned().fold(0.0, f64::max),
        stats.machine_cross_kib_s.iter().sum::<f64>()
    );
    println!("\n(figure-quality comparison: cargo run --release -p dss-bench --bin fig8)");
}
