//! Quickstart: build a Storm-like topology, run the default scheduler and
//! the paper's actor-critic DRL scheduler, and compare average end-to-end
//! tuple processing times.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsdps_drl::control::experiment::{deployment_curve, stable_ms, train_method, Method};
use dsdps_drl::control::ControlConfig;
use dsdps_drl::sim::{ClusterSpec, Grouping, TopologyBuilder, Workload};

fn main() {
    // 1. Describe an application as a topology: a spout feeding a two-bolt
    //    pipeline, exactly like a small Storm topology.
    let mut b = TopologyBuilder::new("quickstart");
    let spout = b.spout("events", 2, 0.05); // 2 executors, 0.05 ms/tuple
    let parse = b.bolt("parse", 6, 0.4);
    let sink = b.bolt("sink", 4, 0.3);
    b.edge(spout, parse, Grouping::Shuffle, 1.0, 256);
    b.edge(parse, sink, Grouping::Shuffle, 0.5, 128);
    let topology = b.build().expect("valid topology");

    // 2. Describe the cluster (the paper uses 10 quad-core workers) and the
    //    incoming workload.
    let cluster = ClusterSpec::homogeneous(6);
    let workload = Workload::uniform(&topology, 800.0); // tuples/s

    let app = dsdps_drl::apps::App {
        name: "quickstart",
        topology,
        workload,
    };

    // 3. Train the paper's actor-critic scheduler (offline random samples +
    //    online learning) and compare with Storm's default round-robin.
    let cfg = ControlConfig::test(); // tiny budget: seconds, not minutes
    println!("training actor-critic scheduler (tiny demo budget)...");
    let default = train_method(Method::Default, &app, &cluster, &cfg);
    let drl = train_method(Method::ActorCritic, &app, &cluster, &cfg);

    // 4. Deploy both solutions on the tuple-level simulator for 10 minutes
    //    of simulated time and read the stable latency off the curves.
    let default_curve = deployment_curve(&app, &cluster, &cfg, &default.solution, 10.0, 30.0);
    let drl_curve = deployment_curve(&app, &cluster, &cfg, &drl.solution, 10.0, 30.0);
    let d = stable_ms(&default_curve);
    let a = stable_ms(&drl_curve);
    println!("default (round-robin) stable avg tuple time: {d:.3} ms");
    println!("actor-critic DRL      stable avg tuple time: {a:.3} ms");
    println!("improvement: {:.1}%", (d - a) / d * 100.0);
    println!(
        "machines used: default {} -> actor-critic {}",
        default.solution.machines_used(),
        drl.solution.machines_used()
    );
}
