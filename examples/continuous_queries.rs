//! The paper's continuous-queries workload end to end: generate the
//! in-memory vehicle table and speed queries, train all four schedulers at
//! small scale, and print the comparison (a miniature Figure 6a).
//!
//! ```sh
//! cargo run --release --example continuous_queries
//! ```

use dsdps_drl::apps::datagen::{QueryGen, VehicleDb};
use dsdps_drl::apps::{continuous_queries, CqScale};
use dsdps_drl::control::experiment::{deployment_curve, stable_ms, train_method, Method};
use dsdps_drl::control::ControlConfig;
use dsdps_drl::sim::ClusterSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The data the application processes: a synthetic vehicle table and
    // random speed queries (the simulator consumes their statistics; the
    // example shows the payloads the paper describes).
    let mut rng = StdRng::seed_from_u64(11);
    let db = VehicleDb::generate(1000, &mut rng);
    let queries = QueryGen::default();
    let threshold = queries.next_query(&mut rng);
    let hits = db.speeders(threshold).count();
    println!("vehicle table: {} rows", db.records().len());
    let sample = &db.records()[0];
    println!(
        "  e.g. plate {} owner {} ssn {} speed {:.0} mph",
        sample.plate, sample.owner, sample.ssn, sample.speed_mph
    );
    println!("query 'speed > {threshold:.0}' matches {hits} rows\n");

    // The scheduling experiment (small scale: 20 executors as in the paper).
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);
    let cfg = ControlConfig::test();
    println!("training 4 schedulers on {} ...", app.name);
    for method in Method::all() {
        let outcome = train_method(method, &app, &cluster, &cfg);
        let curve = deployment_curve(&app, &cluster, &cfg, &outcome.solution, 8.0, 30.0);
        println!(
            "  {:<14} stable {:.3} ms  (machines used: {})",
            outcome.method.label(),
            stable_ms(&curve),
            outcome.solution.machines_used()
        );
    }
    println!("\n(figure-quality runs: cargo run --release -p dss-bench --bin fig6)");
}
