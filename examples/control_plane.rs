//! The full Figure-1 control plane over a real localhost TCP socket.
//!
//! The paper deploys its DRL agent as an external process talking to the
//! custom scheduler (inside Nimbus) over a socket, with the scheduling
//! solution stored in ZooKeeper and transition samples in a database. This
//! example runs that exact architecture: a trained actor-critic scheduler
//! on the agent side, a Nimbus master driving the simulated cluster on the
//! other side of the socket, the coordination service holding the
//! assignment, and every `(s, a, r, s')` sample persisted to disk.
//!
//! ```sh
//! cargo run --release --example control_plane
//! ```

use dsdps_drl::apps::continuous_queries::{continuous_queries, CqScale};
use dsdps_drl::control::experiment::{train_method, Method};
use dsdps_drl::control::ControlConfig;
use dsdps_drl::sim::{ClusterSpec, SimConfig};
use dsdps_drl::store::TransitionDb;
use dsdps_drl::{run_control_plane, ControlPlaneConfig};

fn main() {
    // The continuous-queries application at small scale (paper Fig. 6a).
    let app = continuous_queries(CqScale::Small);
    let cluster = ClusterSpec::homogeneous(10);

    // Train the paper's actor-critic scheduler first (offline + online,
    // tiny demo budget), then hand the trained policy to the agent side
    // of the control plane.
    println!("training actor-critic scheduler...");
    let cfg = ControlConfig::test();
    let mut trained = train_method(Method::ActorCritic, &app, &cluster, &cfg);

    let db_dir = std::env::temp_dir().join("dsdps-drl-control-plane-example");
    std::fs::remove_dir_all(&db_dir).ok();

    println!("starting Nimbus + agent over TCP localhost...");
    let report = run_control_plane(
        app.topology.clone(),
        cluster,
        app.workload.clone(),
        SimConfig::default(),
        trained.scheduler.as_mut(),
        &ControlPlaneConfig {
            epochs: 5,
            stabilize_s: 60.0,
            use_tcp: true,
            db_dir: Some(db_dir.clone()),
            ..ControlPlaneConfig::default()
        },
    )
    .expect("control plane run");

    println!("\nscheduler endpoint: {}", report.scheduler_ident);
    println!("epoch | avg tuple processing time (ms)");
    for (i, ms) in report.epoch_latency_ms.iter().enumerate() {
        println!("{i:>5} | {ms:.3}");
    }
    println!(
        "\n{} transition samples persisted to {}",
        report.transitions_stored,
        report.db_dir.display()
    );

    // The database is a real store: read it back like the offline trainer
    // would after an agent restart.
    let db = TransitionDb::open(&db_dir).expect("reopen transition db");
    let samples = db.scan().expect("scan transition db");
    println!(
        "reopened database: {} samples, first reward {:.4}, last reward {:.4}",
        samples.len(),
        samples.first().map(|r| r.reward).unwrap_or(0.0),
        samples.last().map(|r| r.reward).unwrap_or(0.0),
    );
    std::fs::remove_dir_all(&db_dir).ok();
}
