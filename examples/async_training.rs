//! The Rapid-style async training service, assembled by hand.
//!
//! One parameter server + continuous learner, three in-process rollout
//! workers, and a **fourth worker in a separate process** that joins over
//! loopback TCP speaking `dss-proto` frames (the example re-execs itself
//! in child mode — see `ASYNC_TRAINING_WORKER`). While training runs, a
//! monitor prints a table of collection throughput, the published weight
//! version, and the mean staleness of accepted batches.
//!
//! Every claim is shape-checked; any violation exits with status 1.
//!
//! ```sh
//! cargo run --release --example async_training
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsdps_drl::control::config::ControlConfig;
use dsdps_drl::control::controller::Controller;
use dsdps_drl::control::experiment::Backend;
use dsdps_drl::control::parallel::ActorSetup;
use dsdps_drl::control::scenario::Scenario;
use dsdps_drl::control::scheduler::{RandomMode, RandomScheduler};
use dsdps_drl::proto::TcpTransport;
use dsdps_drl::rl::{Elem, ShardedReplayBuffer};
use dsdps_drl::trainer::{
    run_remote_worker, serve_worker, BoundedQueue, Learner, LocalClient, ParameterServer,
    RolloutWorker, SharedStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SCENARIO: &str = "cq-small-steady";
const IN_PROCESS_WORKERS: usize = 3;
const ROUNDS: usize = 16;
const STEPS_PER_ROUND: usize = 4;
const TRAIN_PER_BATCH: usize = 4;

fn check(ok: bool, what: &str) {
    if !ok {
        eprintln!("async_training: shape check failed: {what}");
        std::process::exit(1);
    }
}

fn cfg() -> ControlConfig {
    ControlConfig {
        offline_samples: 20,
        offline_steps: 15,
        online_epochs: 24,
        eps_decay_epochs: 12,
        sim_epoch_s: 5.0,
        ..ControlConfig::test()
    }
}

/// Child mode: `ASYNC_TRAINING_WORKER=<addr>;<worker_id>` turns this
/// binary into a remote rollout worker that dials the parent's listener.
fn child_main(spec: &str) -> ! {
    let (addr, id) = spec.split_once(';').expect("addr;worker_id");
    let addr = addr.parse().expect("listener address");
    let id: usize = id.parse().expect("worker id");
    match run_remote_worker(
        addr,
        Backend::Sim,
        SCENARIO,
        &cfg(),
        id,
        ROUNDS,
        STEPS_PER_ROUND,
    ) {
        Ok(rows) => {
            println!("  [child worker {id}] pushed {rows} rows over TCP");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("  [child worker {id}] failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    if let Ok(spec) = std::env::var("ASYNC_TRAINING_WORKER") {
        child_main(&spec);
    }

    println!("=== Rapid-style async training service ===");
    let cfg = cfg();
    let sc = Scenario::by_name(SCENARIO).expect("registry scenario");
    let (n, m, s) = (sc.n_executors(), sc.n_machines(), sc.n_sources());
    let state_dim = sc.state_dim();

    // The service backbone: versioned weights, bounded experience queue,
    // shared telemetry, sharded replay.
    let ps = Arc::new(ParameterServer::new());
    let queue = Arc::new(BoundedQueue::new(64));
    let stats = Arc::new(SharedStats::new());
    let replay = Arc::new(ShardedReplayBuffer::<Elem>::new(4, 4096, state_dim, n * m));
    let mut learner = Learner::new(
        &cfg,
        n,
        m,
        s,
        Arc::clone(&replay),
        Arc::clone(&ps),
        Arc::clone(&stats),
        u64::MAX,
        4,
    );

    // Offline phase (Algorithm 1 line 4): a random chain pretrains the
    // nets before any worker pulls; version 1 is the offline policy.
    let controller = Controller::new(cfg);
    let mut env = sc.sim_env(&cfg, cfg.seed);
    let mut collector =
        RandomScheduler::new(RandomMode::FullRandom, StdRng::seed_from_u64(cfg.seed));
    let data = controller.collect_offline(
        &mut env,
        &sc.app.workload,
        &mut collector,
        sc.initial_assignment(),
        &mut StdRng::seed_from_u64(cfg.seed ^ 0xE0),
    );
    learner.pretrain(&data);
    let v1 = learner.publish();
    check(v1 == 1, "first publish is version 1");
    println!(
        "offline: {} samples pretrained, policy v{v1} published\n",
        data.len()
    );

    // Three in-process workers + one separate-process worker over TCP.
    let live = Arc::new(AtomicUsize::new(IN_PROCESS_WORKERS + 1));
    let mut worker_threads = Vec::new();
    for i in 0..IN_PROCESS_WORKERS {
        let setup = ActorSetup {
            env: sc.sim_env(&cfg, cfg.seed.wrapping_add(i as u64)),
            workload: sc.app.workload.clone(),
            initial: sc.initial_assignment(),
        };
        let client = LocalClient {
            ps: Arc::clone(&ps),
            queue: Arc::clone(&queue),
            stats: Arc::clone(&stats),
        };
        let mut worker = RolloutWorker::new(i, setup, &cfg, client);
        let live = Arc::clone(&live);
        worker_threads.push(std::thread::spawn(move || {
            worker.run(ROUNDS, STEPS_PER_ROUND);
            live.fetch_sub(1, Ordering::Release);
        }));
    }

    let (listener, addr) = TcpTransport::listen_localhost().expect("loopback listener");
    listener.set_nonblocking(true).expect("nonblocking accept");
    let exe = std::env::current_exe().expect("own binary path");
    let mut child = std::process::Command::new(exe)
        .env(
            "ASYNC_TRAINING_WORKER",
            format!("{addr};{IN_PROCESS_WORKERS}"),
        )
        .spawn()
        .expect("spawn child worker");
    println!(
        "child worker {} dialing {addr} from pid {}",
        IN_PROCESS_WORKERS,
        child.id()
    );
    let serve_thread = {
        let (ps, queue, stats, live) = (
            Arc::clone(&ps),
            Arc::clone(&queue),
            Arc::clone(&stats),
            Arc::clone(&live),
        );
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let transport = loop {
                match TcpTransport::accept(&listener) {
                    Ok(t) => break Some(t),
                    Err(_) if t0.elapsed() < Duration::from_secs(20) => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break None,
                }
            };
            let Some(transport) = transport else {
                eprintln!("async_training: child worker never connected");
                live.fetch_sub(1, Ordering::Release);
                return false;
            };
            transport
                .set_io_deadline(Some(Duration::from_millis(500)))
                .expect("serve deadline");
            serve_worker(transport, ps, queue, stats);
            live.fetch_sub(1, Ordering::Release);
            true
        })
    };

    // The monitor: collection rate, published version, mean staleness.
    let done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let (stats, done) = (Arc::clone(&stats), Arc::clone(&done));
        std::thread::spawn(move || {
            println!(
                "{:>8} {:>14} {:>10} {:>10}",
                "t", "transitions/s", "weights", "mean lag"
            );
            let t0 = Instant::now();
            let mut last = (Instant::now(), 0u64);
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(250));
                let now = Instant::now();
                let total = stats.transitions();
                let rate = (total - last.1) as f64 / now.duration_since(last.0).as_secs_f64();
                last = (now, total);
                println!(
                    "{:>7.1}s {:>14.0} {:>10} {:>10.2}",
                    t0.elapsed().as_secs_f64(),
                    rate,
                    format!("v{}", stats.weight_version()),
                    stats.mean_version_lag(),
                );
            }
        })
    };

    // The learner drives on the main thread until collection finishes.
    learner.drive(&queue, &live, TRAIN_PER_BATCH);
    done.store(true, Ordering::Release);
    for t in worker_threads {
        t.join().expect("worker thread");
    }
    queue.close();
    let served = serve_thread.join().expect("serve thread");
    monitor.join().expect("monitor thread");
    let status = child.wait().expect("child exit status");

    // Final decision: greedy pick + elite, validated by measurement.
    let mut validation = sc.sim_env(&cfg, cfg.seed);
    let solution =
        learner.finalize_measured(&mut validation, &sc.initial_assignment(), &sc.app.workload);
    let snap = stats.snapshot();
    println!("\nfinal: {snap:#?}");
    println!("solution: {:?}", solution.as_slice());

    check(served, "TCP worker was served");
    check(status.success(), "child worker exited cleanly");
    let expected = ((IN_PROCESS_WORKERS + 1) * ROUNDS * STEPS_PER_ROUND) as u64;
    check(
        snap.transitions == expected,
        "every batch from all four workers must land",
    );
    check(snap.train_steps > 0, "learner must train");
    check(snap.weight_version > 1, "policy must be republished");
    check(
        snap.pushes_during_train > 0,
        "workers must push while the learner trains (overlap)",
    );
    check(
        solution.as_slice().len() == n,
        "solution covers every executor",
    );
    check(
        solution.as_slice().iter().all(|&mac| mac < m),
        "solution maps onto real machines",
    );
    println!("\nasync_training: all shape checks passed");
}
