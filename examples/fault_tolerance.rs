//! Failure handling: a worker machine dies mid-run and Nimbus repairs.
//!
//! Paper §2.1: *"The master monitors heartbeat signals from all worker
//! processes periodically. It re-schedules them when it discovers a
//! failure."* This example crashes one of the cluster's machines while a
//! topology is running, watches its coordination session expire, and shows
//! the master moving the stranded executors to live machines — with the
//! latency spike and re-stabilization the redeployment causes.
//!
//! A second act covers *network* failure instead of machine failure: the
//! agent↔master control link is made lossy and then fully partitioned for
//! a two-epoch window. The reliable protocol rides out the loss, the
//! partition degrades to bounded penalty epochs instead of hanging, and
//! measurement resumes the moment the link heals. Each claim is shape-
//! checked; any violation exits with status 1.
//!
//! A third act kills the *master itself* — twice. The first crash is
//! absorbed by a standby that wins the leader election and resumes from
//! the committed recovery image without losing an epoch; the second finds
//! an empty pool, goes dark until the scripted operator restart, and
//! surfaces as a single `DegradedReason::Failover` epoch. Then the
//! *training process* is killed at a checkpoint boundary and resumed —
//! and the resumed trajectory is asserted bit-identical to an
//! uninterrupted same-seed run, master crashes and all.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use dsdps_drl::control::env::Environment;
use dsdps_drl::control::experiment::{train_method_durable, train_method_on, Backend, Method};
use dsdps_drl::control::scenario::Scenario;
use dsdps_drl::control::{ControlConfig, DegradedReason, DurableOptions, DurableRun};
use dsdps_drl::coord::{CoordConfig, CoordService};
use dsdps_drl::nimbus::{Nimbus, NimbusConfig, SupervisorSet};
use dsdps_drl::proto::ChaosPlan;
use dsdps_drl::sim::{
    Assignment, ClusterSpec, Grouping, SimConfig, SimEngine, TopologyBuilder, Workload,
};

fn check(ok: bool, what: &str) {
    if !ok {
        eprintln!("fault_tolerance: shape check failed: {what}");
        std::process::exit(1);
    }
}

/// Act two: a lossy control link that black-holes entirely for epochs
/// 2–3, against a live ClusterEnv.
fn partition_then_heal() {
    println!("\n--- partition-then-heal: the control link itself fails ---");
    let cfg = ControlConfig {
        sim_epoch_s: 1.0,
        ..ControlConfig::test()
    };
    let mut sc = Scenario::by_name("cq-small-steady").expect("registry scenario");
    sc.chaos = Some(
        ChaosPlan::lossy(0xFA17, 0.10)
            .with_duplicate(0.05)
            .with_partition_epochs(2, 4),
    );
    let mut env = sc.cluster_env(&cfg, 11);
    let workload = &sc.app.workload;
    let mut current = sc.initial_assignment();

    println!("epoch | latency (ms) | link");
    let mut rewards = Vec::new();
    for epoch in 0..8 {
        let r = env.deploy_and_measure(&current, workload);
        let link = match env.last_degraded() {
            Some(DegradedReason::Partitioned) => "PARTITIONED (penalty epoch)",
            Some(DegradedReason::Unreachable) => "unreachable (penalty epoch)",
            Some(DegradedReason::Protocol) => "protocol fault (penalty epoch)",
            Some(DegradedReason::Failover) => "master failover (penalty epoch)",
            None => "healthy (retries absorbed any loss)",
        };
        println!("{epoch:>5} | {r:>12.3} | {link}");
        rewards.push(r);
        current = current.with_move(epoch % current.n_executors(), (epoch + 1) % 4);
    }

    check(rewards.iter().all(|r| r.is_finite()), "rewards stay finite");
    check(
        env.degraded_epochs() == 2,
        "exactly the two partition epochs degrade",
    );
    check(
        rewards[2] == rewards[3] && rewards[2] >= 10_000.0,
        "partition epochs report the bounded penalty",
    );
    check(
        rewards[0].abs() < 100.0 && rewards[7].abs() < 100.0,
        "epochs outside the window measure real latency",
    );
    check(
        env.last_degraded().is_none(),
        "the env re-syncs after the link heals",
    );
    let stats = env.chaos_stats().expect("chaos armed");
    check(stats.dropped > 0, "the lossy link actually dropped frames");
    check(stats.partition_dropped > 0, "the partition actually fired");
    println!(
        "healed: {} frames dropped by loss, {} black-holed by the partition, \
         {} duplicated; {} retransmission-covered epochs measured fine",
        stats.dropped,
        stats.partition_dropped,
        stats.duplicated,
        8 - env.degraded_epochs()
    );
}

/// Act three: the master itself dies — twice — and then the training
/// process does too. Leader election + the recovery image absorb the
/// master crashes; the durable checkpoint absorbs the process kill.
fn master_failover_and_crash_safe_training() {
    println!("\n--- master failover: the master itself dies (twice) ---");
    let cfg = ControlConfig {
        sim_epoch_s: 5.0,
        ..ControlConfig::test()
    };
    let sc = Scenario::by_name("cq-small-master-crash").expect("registry scenario");
    // With a standby in the pool, both scripted crashes (t = 20 s and
    // t = 100 s; the operator restarts at 60 s / 140 s refill the pool)
    // are hitless: the standby wins the election, loads the committed
    // recovery image, and serves the very request the dead leader
    // dropped — no epoch degrades, only the generation counter moves.
    let mut env = sc.cluster_env(&cfg, 7).with_standbys(1);
    let workload = &sc.app.workload;
    let mut current = sc.initial_assignment();

    println!("epoch | latency (ms) | gen | epoch status");
    for epoch in 0..24 {
        let r = env.deploy_and_measure(&current, workload);
        let status = match env.last_degraded() {
            Some(DegradedReason::Failover) => "FAILOVER (dark window, penalty epoch)",
            Some(DegradedReason::Partitioned) => "partitioned (penalty epoch)",
            Some(DegradedReason::Unreachable) => "unreachable (penalty epoch)",
            Some(DegradedReason::Protocol) => "protocol fault (penalty epoch)",
            None => "served",
        };
        println!(
            "{epoch:>5} | {r:>12.3} | {:>3} | {status}",
            env.master_generation()
        );
        current = current.with_move(epoch % current.n_executors(), (epoch + 1) % 4);
        check(r.is_finite(), "rewards stay finite across failovers");
    }
    check(
        env.failovers() == 2,
        "both master crashes completed as failovers",
    );
    check(env.master_generation() == 2, "two incarnations promoted");
    println!(
        "survived: {} failovers, master generation {}, {} degraded epoch(s) \
         (chaos only — standby takeovers are hitless)",
        env.failovers(),
        env.master_generation(),
        env.degraded_epochs(),
    );

    // Without a standby the first crash leaves the pool empty: the
    // request falls on a dead NIC, the agent's retry budget burns into
    // the dark window, and the epoch degrades. The resume probe that
    // follows reaches the operator-restarted master, sees its bumped
    // generation, and classifies the epoch as a *failover* rather than a
    // network fault.
    println!("\n--- the same crash with an empty pool: a visible dark window ---");
    let mut env = sc.cluster_env(&cfg, 7);
    let mut current = sc.initial_assignment();
    let mut failover_epochs = 0;
    for epoch in 0..8 {
        let r = env.deploy_and_measure(&current, workload);
        if env.last_degraded() == Some(DegradedReason::Failover) {
            failover_epochs += 1;
            println!("epoch {epoch}: master dark -> penalty {r:.0} ms, classified Failover");
        }
        current = current.with_move(epoch % current.n_executors(), (epoch + 1) % 4);
    }
    check(
        failover_epochs >= 1,
        "the standby-less crash surfaced as a Failover epoch",
    );
    check(env.failovers() >= 1, "the restart still promoted a master");
    println!(
        "dark window cost {failover_epochs} penalty epoch(s); generation now {}",
        env.master_generation()
    );

    println!("\n--- crash-safe training: kill the trainer, resume, same run ---");
    let cfg = ControlConfig {
        offline_samples: 20,
        offline_steps: 15,
        online_epochs: 8,
        eps_decay_epochs: 4,
        sim_epoch_s: 5.0,
        ..ControlConfig::test()
    };
    // The uninterrupted reference run: DQN trained end-to-end against the
    // same master-crash control plane.
    let plain = train_method_on(Backend::Cluster, Method::Dqn, &sc, &cfg);
    // The durable run: checkpoint every 2 epochs, "crash" after epoch 3.
    let dir = std::env::temp_dir().join(format!("dss-ft-example-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let opts = DurableOptions::new(&dir, 2);
    let killed = train_method_durable(
        Backend::Cluster,
        Method::Dqn,
        &sc,
        &cfg,
        &opts.clone().kill_after(3),
    )
    .expect("durable run");
    check(
        matches!(killed, DurableRun::Killed { at_epoch: 3 }),
        "the scripted kill fired after epoch 3",
    );
    println!("trainer killed after epoch 3 (last checkpoint: epoch 2)");
    let resumed = train_method_durable(Backend::Cluster, Method::Dqn, &sc, &cfg, &opts)
        .expect("resumed run")
        .into_outcome();
    std::fs::remove_dir_all(&dir).ok();
    let plain_r = plain.rewards.as_ref().expect("rewards");
    let resumed_r = resumed.rewards.as_ref().expect("rewards");
    println!("epoch | uninterrupted reward | killed-and-resumed reward");
    for (t, (a, b)) in plain_r.values().iter().zip(resumed_r.values()).enumerate() {
        println!("{t:>5} | {a:>20.6} | {b:>25.6}");
    }
    check(
        plain_r
            .values()
            .iter()
            .zip(resumed_r.values())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "resumed reward series is bit-identical",
    );
    check(
        plain.solution == resumed.solution,
        "resumed run deploys the identical solution",
    );
    println!("resume re-derived epochs 3..8 bit-identically — nothing lost, nothing doubled");
}

fn main() {
    // A word-count-like pipeline on 6 machines.
    let mut b = TopologyBuilder::new("fault-demo");
    let spout = b.spout("lines", 3, 0.05);
    let split = b.bolt("split", 9, 0.3);
    let count = b.bolt("count", 9, 0.25);
    b.edge(spout, split, Grouping::Shuffle, 1.0, 256);
    b.edge(
        split,
        count,
        Grouping::Fields {
            n_keys: 1000,
            skew: 1.05,
        },
        3.0,
        64,
    );
    let topology = b.build().expect("valid topology");
    let cluster = ClusterSpec::homogeneous(6);
    let workload = Workload::uniform(&topology, 300.0);

    // Launch the control plane: coordination service (30 s session
    // timeout, like Storm's nimbus.task.timeout), master, supervisors.
    let coord = CoordService::new(CoordConfig {
        session_timeout_ms: 30_000,
    });
    let initial = Assignment::round_robin(&topology, &cluster);
    let engine =
        SimEngine::new(topology, cluster, workload.clone(), SimConfig::default()).expect("engine");
    let mut nimbus =
        Nimbus::launch(engine, workload, initial, &coord, NimbusConfig::default()).expect("launch");
    let supervisors = SupervisorSet::register(&coord, 6).expect("supervisors");
    nimbus.attach_supervisors(supervisors);

    println!("time(s) | live machines | avg tuple time (ms) | note");
    let report = |nimbus: &mut Nimbus, note: &str| {
        let live = nimbus
            .live_machines()
            .expect("live machines")
            .iter()
            .filter(|&&l| l)
            .count();
        let ms = nimbus
            .engine_mut()
            .window_avg_latency_ms()
            .unwrap_or(f64::NAN);
        let t = nimbus.engine().now();
        println!("{t:>7.0} | {live:>13} | {ms:>19.3} | {note}");
    };

    // Healthy warm-up.
    nimbus.advance(120.0);
    report(&mut nimbus, "warmed up");

    // Machine 4 dies: its supervisor daemon goes silent.
    nimbus.crash_machine(4);
    report(&mut nimbus, "machine 4 crashed (not yet visible)");

    // Its session expires after 30 s of silence; until then the master
    // still sees 6 supervisors.
    nimbus.advance(nimbus.engine().now() + 45.0);
    report(&mut nimbus, "session expired");

    // The master discovers the failure and repairs the assignment.
    let outcome = nimbus
        .detect_and_repair()
        .expect("repair")
        .expect("a repair was needed");
    report(
        &mut nimbus,
        &format!("repaired: moved {} executors", outcome.moved),
    );
    assert!(nimbus
        .engine()
        .assignment()
        .as_slice()
        .iter()
        .all(|&m| m != 4));

    // Redeployment causes a transient spike, then the system re-stabilizes
    // on 5 machines.
    for _ in 0..4 {
        nimbus.advance(nimbus.engine().now() + 60.0);
        report(&mut nimbus, "re-stabilizing");
    }

    // The machine comes back; its supervisor re-registers.
    nimbus.restart_machine(4).expect("restart");
    report(&mut nimbus, "machine 4 back online");
    println!(
        "\nstored assignment version in coordination service: {:?}",
        nimbus.stored_assignment().map(|a| a.machines_used())
    );

    partition_then_heal();
    master_failover_and_crash_safe_training();
}
